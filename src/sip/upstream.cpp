#include "sip/upstream.hpp"

#include "obs/recorder.hpp"

#include <algorithm>
#include <map>

#include "annotate/runtime.hpp"
#include "rt/sim.hpp"
#include "rt/thread.hpp"
#include "sip/stats.hpp"
#include "support/assert.hpp"

namespace rg::sip {

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::Closed:
      return "closed";
    case BreakerState::Open:
      return "open";
    case BreakerState::HalfOpen:
      return "half-open";
  }
  return "?";
}

const char* to_string(ForwardOutcome o) {
  switch (o) {
    case ForwardOutcome::Disabled:
      return "disabled";
    case ForwardOutcome::Forwarded:
      return "forwarded";
    case ForwardOutcome::Exhausted:
      return "exhausted";
    case ForwardOutcome::AllOpen:
      return "all-open";
  }
  return "?";
}

// --- circuit breaker ---------------------------------------------------------

CircuitBreaker::CircuitBreaker(const BreakerConfig& config)
    : config_(config) {}

void CircuitBreaker::transition(BreakerState to, std::uint64_t now,
                                std::uint64_t cooldown) {
  const BreakerState from = state_;
  state_ = to;
  if (listener_ != nullptr) listener_(listener_ctx_, from, to, now, cooldown);
}

void CircuitBreaker::open(std::uint64_t now) {
  ++opens_streak_;
  // Reopen backoff: cooldown doubles per open in the streak, capped.
  std::uint64_t cooldown = config_.open_cooldown_ticks;
  for (std::uint32_t i = 1; i < opens_streak_ && i < 32; ++i) {
    if (cooldown >= config_.max_cooldown_ticks) break;
    cooldown *= 2;
  }
  cooldown_ = std::min(std::max<std::uint64_t>(cooldown, 1),
                       std::max<std::uint64_t>(config_.max_cooldown_ticks, 1));
  open_until_ = now + cooldown_;
  failures_ = 0;
  transition(BreakerState::Open, now, cooldown_);
}

CircuitBreaker::Admit CircuitBreaker::admit(std::uint64_t now) {
  switch (state_) {
    case BreakerState::Closed:
      return Admit::Allow;
    case BreakerState::Open:
      if (now < open_until_) return Admit::Reject;
      transition(BreakerState::HalfOpen, now, 0);
      probe_inflight_ = true;
      return Admit::Probe;
    case BreakerState::HalfOpen:
      if (probe_inflight_) return Admit::Reject;
      probe_inflight_ = true;
      return Admit::Probe;
  }
  return Admit::Reject;
}

void CircuitBreaker::on_success(std::uint64_t now) {
  switch (state_) {
    case BreakerState::Closed:
      failures_ = 0;
      break;
    case BreakerState::HalfOpen:
      // Probe succeeded: close fully and forget the reopen streak.
      probe_inflight_ = false;
      failures_ = 0;
      opens_streak_ = 0;
      cooldown_ = 0;
      open_until_ = 0;
      transition(BreakerState::Closed, now, 0);
      break;
    case BreakerState::Open:
      // A straggler admitted before the trip finished late; ignored.
      break;
  }
}

void CircuitBreaker::on_failure(std::uint64_t now) {
  switch (state_) {
    case BreakerState::Closed:
      if (++failures_ >= config_.failure_threshold) open(now);
      break;
    case BreakerState::HalfOpen:
      // Probe failed: reopen with a grown cooldown.
      probe_inflight_ = false;
      open(now);
      break;
    case BreakerState::Open:
      break;
  }
}

// --- upstream target ---------------------------------------------------------

UpstreamTarget::UpstreamTarget(std::uint32_t id, const UpstreamConfig& config,
                               UpstreamPool* pool)
    : id_(id),
      config_(config),
      pool_(pool),
      mu_("upstream-" + std::to_string(id)),
      breaker_(config.breaker),
      served_(0),
      failed_(0) {
  breaker_.set_listener(&UpstreamTarget::breaker_listener, this);
}

UpstreamTarget::~UpstreamTarget() { vptr_write(); }

void UpstreamTarget::breaker_listener(void* ctx, BreakerState from,
                                      BreakerState to, std::uint64_t now,
                                      std::uint64_t cooldown) {
  auto* self = static_cast<UpstreamTarget*>(ctx);
  self->pool_->record_transition(self->id_, from, to, now, cooldown);
}

ServeOutcome UpstreamTarget::serve(std::uint64_t request_id,
                                   std::uint32_t attempt,
                                   rt::ChaosEngine* chaos) {
  virtual_dispatch();
  RG_FRAME();
  ServeOutcome out;
  rt::UpstreamFault fault;
  if (chaos != nullptr)
    fault = chaos->apply_upstream(id_, request_id, attempt);

  // The forwarding worker itself may be stalled mid-attempt.
  if (fault.stall_ticks != 0) rt::sleep_ticks(fault.stall_ticks);

  if (fault.drop) {
    // Request or response lost: the attempt burns its whole timeout.
    rt::sleep_ticks(config_.per_try_timeout_ticks);
    out.timed_out = true;
  } else if (fault.delay_ticks != 0 &&
             fault.delay_ticks >= config_.per_try_timeout_ticks) {
    // Answer would arrive after the proxy stopped waiting.
    rt::sleep_ticks(config_.per_try_timeout_ticks);
    out.timed_out = true;
  } else {
    rt::sleep_ticks(fault.delay_ticks + config_.service_ticks);
    out.status = fault.error ? 500 : 200;
  }

  {
    rt::lock_guard guard(mu_);
    if (out.ok())
      served_.store(served_.load() + 1);
    else
      failed_.store(failed_.load() + 1);
  }
  return out;
}

CircuitBreaker::Admit UpstreamTarget::admit(std::uint64_t now) {
  rt::lock_guard guard(mu_);
  return breaker_.admit(now);
}

void UpstreamTarget::settle(std::uint64_t now, bool success) {
  rt::lock_guard guard(mu_);
  if (success)
    breaker_.on_success(now);
  else
    breaker_.on_failure(now);
}

BreakerState UpstreamTarget::breaker_state() const {
  rt::lock_guard guard(mu_);
  return breaker_.state();
}

std::uint64_t UpstreamTarget::breaker_open_until() const {
  rt::lock_guard guard(mu_);
  return breaker_.open_until();
}

std::uint64_t UpstreamTarget::breaker_cooldown() const {
  rt::lock_guard guard(mu_);
  return breaker_.cooldown();
}

std::uint64_t UpstreamTarget::served() const {
  rt::lock_guard guard(mu_);
  return served_.load();
}

std::uint64_t UpstreamTarget::failed() const {
  rt::lock_guard guard(mu_);
  return failed_.load();
}

// --- the pool ---------------------------------------------------------------

std::uint64_t request_key(std::string_view branch) {
  // FNV-1a 64: stable across platforms, stable across retransmissions of
  // the same transaction (same Via branch -> same upstream fault plan).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : branch) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

UpstreamPool::UpstreamPool(const UpstreamConfig& config, ProxyStats* stats)
    : config_(config), stats_(stats) {}

UpstreamPool::~UpstreamPool() { shutdown(); }

std::uint64_t UpstreamPool::now() {
  rt::Sim* sim = rt::Sim::current();
  return sim != nullptr ? sim->sched().virtual_time() : 0;
}

void UpstreamPool::start() {
  if (!enabled() || !targets_.empty()) return;
  targets_.reserve(config_.targets);
  for (std::size_t i = 0; i < config_.targets; ++i)
    targets_.push_back(
        new UpstreamTarget(static_cast<std::uint32_t>(i), config_, this));
}

void UpstreamPool::shutdown() {
  if (targets_.empty()) return;
  rt::Sim* sim = rt::Sim::current();
  if (sim != nullptr && sim->sched().tearing_down()) {
    // Post-deadlock teardown: thread creation is a no-op, so the crew
    // below would never run its deletes — reclaim inline (the run is
    // already aborted; the concurrent-destructor workload is moot).
    for (UpstreamTarget*& t : targets_) {
      delete t;
      t = nullptr;
    }
    targets_.clear();
    return;
  }
  // §4.2.1 destructor workload: the shared polymorphic targets are torn
  // down by several concurrent teardown threads, each announcing the
  // destruction with the Fig. 4 annotation before deleting.
  const std::size_t crew_size = std::min<std::size_t>(targets_.size(), 3);
  std::vector<rt::thread> crew;
  crew.reserve(crew_size);
  for (std::size_t t = 0; t < crew_size; ++t) {
    crew.emplace_back(
        [this, t, crew_size] {
          for (std::size_t i = t; i < targets_.size(); i += crew_size) {
            delete annotate::ca_deletor_single(targets_[i]);
            targets_[i] = nullptr;
          }
        },
        "upstream-teardown");
  }
  // joinable() guard: during post-deadlock teardown thread creation is a
  // no-op and yields an empty handle that must not be joined.
  for (rt::thread& th : crew)
    if (th.joinable()) th.join();
  targets_.clear();
}

void UpstreamPool::record_transition(std::uint32_t target, BreakerState from,
                                     BreakerState to, std::uint64_t vtime,
                                     std::uint64_t cooldown) {
  {
    std::lock_guard<std::mutex> guard(log_mu_);
    BreakerTransition rec;
    // Stamp at append time, not with the caller's sampled clock: a thread
    // can sample `now`, lose its scheduler slot to another target's
    // transition, and append late — the append order under log_mu_ is the
    // serialization order, so only an append-time stamp keeps the global
    // log monotone. The breaker itself still runs on the caller's clock.
    rec.vtime = std::max(vtime, now());
    rec.target = target;
    rec.from = from;
    rec.to = to;
    rec.cooldown = cooldown;
    log_.push_back(rec);
    if (to == BreakerState::Open) ++opens_;
    if (obs::FlightRecorder* fr = obs::ambient(); fr != nullptr)
      fr->record(obs::EventKind::BreakerTransition, rec.vtime,
                 rt::Sim::current() != nullptr ? rt::Sim::current()->sched().current()
                                               : rt::kNoThread,
                 target,
                 obs::pack_breaker(static_cast<std::uint8_t>(from),
                                   static_cast<std::uint8_t>(to), cooldown));
  }
  if (to == BreakerState::Open && stats_ != nullptr)
    stats_->count_breaker_open();
}

std::vector<BreakerTransition> UpstreamPool::transitions() const {
  std::lock_guard<std::mutex> guard(log_mu_);
  return log_;
}

std::string UpstreamPool::transitions_text() const {
  std::lock_guard<std::mutex> guard(log_mu_);
  std::string out;
  for (const BreakerTransition& r : log_) {
    out += "t=";
    out += std::to_string(r.vtime);
    out += " target=";
    out += std::to_string(r.target);
    out += ' ';
    out += to_string(r.from);
    out += "->";
    out += to_string(r.to);
    if (r.cooldown != 0) {
      out += " cooldown=";
      out += std::to_string(r.cooldown);
    }
    out += '\n';
  }
  return out;
}

std::uint64_t UpstreamPool::breaker_opens() const {
  std::lock_guard<std::mutex> guard(log_mu_);
  return opens_;
}

std::uint32_t UpstreamPool::retry_after_hint_s(std::uint64_t at) const {
  std::uint64_t remaining = 0;
  bool any_open = false;
  for (const UpstreamTarget* t : targets_) {
    if (t == nullptr || t->breaker_state() != BreakerState::Open) continue;
    const std::uint64_t until = t->breaker_open_until();
    const std::uint64_t left = until > at ? until - at : 1;
    remaining = any_open ? std::min(remaining, left) : left;
    any_open = true;
  }
  if (!any_open) remaining = config_.breaker.open_cooldown_ticks;
  const std::uint64_t per_s = std::max<std::uint64_t>(config_.ticks_per_second, 1);
  const std::uint64_t seconds = (remaining + per_s - 1) / per_s;
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(seconds, 1));
}

void UpstreamPool::force_open_all(std::uint64_t at) {
  for (UpstreamTarget* t : targets_) {
    if (t == nullptr) continue;
    while (t->breaker_state() != BreakerState::Open)
      t->settle(at, /*success=*/false);
  }
}

ForwardResult UpstreamPool::forward(std::uint64_t request_id) {
  RG_FRAME();
  ForwardResult r;
  if (!enabled() || targets_.empty()) return r;  // Disabled

  const std::uint64_t budget = config_.request_budget_ticks;
  const std::uint64_t deadline = budget == 0 ? ~0ULL : now() + budget;

  // Decorrelated-jitter stream, seeded per request: retries of one request
  // draw a reproducible sleep sequence no matter how workers interleave.
  std::uint64_t jstate = config_.seed;
  (void)support::splitmix64(jstate);
  jstate ^= request_id;
  support::Xoshiro256 jitter(support::splitmix64(jstate));
  const std::uint64_t base = std::max<std::uint64_t>(config_.backoff_base_ticks, 1);
  std::uint64_t prev_sleep = base;

  const std::uint32_t max_attempts = std::max<std::uint32_t>(config_.max_attempts, 1);
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    // Failover rotation: the preferred target is a stable function of the
    // request id; each retry starts one slot further along.
    UpstreamTarget* chosen = nullptr;
    bool preferred = true;
    const std::size_t start =
        (static_cast<std::size_t>(request_id) + attempt) % targets_.size();
    for (std::size_t k = 0; k < targets_.size(); ++k) {
      UpstreamTarget* cand = targets_[(start + k) % targets_.size()];
      if (cand->admit(now()) != CircuitBreaker::Admit::Reject) {
        chosen = cand;
        preferred = k == 0;
        break;
      }
    }
    if (chosen == nullptr) {
      // Every breaker rejected: shed upstream work instead of stalling.
      r.outcome = ForwardOutcome::AllOpen;
      r.attempts = attempt;
      r.retry_after_s = retry_after_hint_s(now());
      return r;
    }

    r.attempts = attempt + 1;
    const ServeOutcome served = chosen->serve(request_id, attempt, chaos_);
    if (served.ok()) {
      chosen->settle(now(), /*success=*/true);
      r.outcome = ForwardOutcome::Forwarded;
      r.status = served.status;
      r.target = chosen->id();
      r.failover = attempt > 0 || !preferred;
      if (stats_ != nullptr) {
        stats_->count_upstream_forward();
        if (r.failover) stats_->count_failover();
      }
      return r;
    }
    chosen->settle(now(), /*success=*/false);

    if (attempt + 1 == max_attempts || now() >= deadline) break;
    // Capped exponential backoff with decorrelated jitter.
    const std::uint64_t hi = std::max(
        base, std::min(std::max<std::uint64_t>(config_.backoff_cap_ticks, base),
                       prev_sleep * 3));
    const std::uint64_t sleep = jitter.range(base, hi);
    prev_sleep = sleep;
    if (now() + sleep >= deadline) break;  // budget would overrun: give up
    if (stats_ != nullptr) stats_->count_upstream_retry();
    rt::sleep_ticks(sleep);
  }

  r.outcome = ForwardOutcome::Exhausted;
  r.retry_after_s = retry_after_hint_s(now());
  return r;
}

// --- transition-log validation ----------------------------------------------

namespace {

bool legal_edge(BreakerState from, BreakerState to) {
  switch (from) {
    case BreakerState::Closed:
      return to == BreakerState::Open;
    case BreakerState::Open:
      return to == BreakerState::HalfOpen;
    case BreakerState::HalfOpen:
      return to == BreakerState::Closed || to == BreakerState::Open;
  }
  return false;
}

}  // namespace

bool validate_transitions(const std::vector<BreakerTransition>& log,
                          std::string* error) {
  auto fail = [error](std::size_t i, const std::string& why) {
    if (error != nullptr)
      *error = "transition " + std::to_string(i) + ": " + why;
    return false;
  };

  std::uint64_t last_time = 0;
  // Per-target expectations: next `from` state and the cooldown of the
  // previous open in the current reopen streak.
  std::map<std::uint32_t, BreakerState> expect;
  std::map<std::uint32_t, std::uint64_t> streak_cooldown;

  for (std::size_t i = 0; i < log.size(); ++i) {
    const BreakerTransition& r = log[i];
    if (r.vtime < last_time) return fail(i, "virtual time went backwards");
    last_time = r.vtime;
    if (!legal_edge(r.from, r.to))
      return fail(i, std::string("illegal edge ") + to_string(r.from) +
                         "->" + to_string(r.to));
    const auto it = expect.find(r.target);
    const BreakerState expected =
        it == expect.end() ? BreakerState::Closed : it->second;
    if (r.from != expected)
      return fail(i, std::string("expected from=") + to_string(expected) +
                         ", got " + to_string(r.from));
    expect[r.target] = r.to;
    if (r.to == BreakerState::Open) {
      const std::uint64_t prev = streak_cooldown[r.target];
      if (r.cooldown == 0) return fail(i, "open armed no cooldown");
      if (prev != 0 && r.cooldown < prev)
        return fail(i, "reopen cooldown shrank within a streak");
      streak_cooldown[r.target] = r.cooldown;
    } else if (r.to == BreakerState::Closed) {
      streak_cooldown[r.target] = 0;  // a close resets the growth
    }
  }
  return true;
}

}  // namespace rg::sip
