// AuditLog — request/transaction journals with pooled entries.
//
// Two logs share one ObjectPool, so trimmed entries from one log get
// recycled into the other. Each log is correctly guarded by its own mutex —
// yet when the pool recycles a block *without* free/alloc events, the
// detector's lockset for that memory intersects across the two lock
// domains and empties: the libstdc++ allocation-strategy false positive of
// §4, which disappears with the pool's force_new (GLIBCXX_FORCE_NEW) mode.
#pragma once

#include <cstdint>
#include <deque>
#include <source_location>
#include <string>

#include "rt/memory.hpp"
#include "rt/sync.hpp"
#include "sip/pool_alloc.hpp"

namespace rg::sip {

class AuditLog {
 public:
  AuditLog(std::string_view name, ObjectPool& pool);
  ~AuditLog();

  /// Appends an entry (allocated from the shared pool) under this log's
  /// mutex.
  void append(std::uint64_t value, std::uint32_t kind,
              const std::source_location& loc =
                  std::source_location::current());

  /// Releases the oldest entries back to the pool until `keep` remain.
  void trim(std::size_t keep,
            const std::source_location& loc =
                std::source_location::current());

  std::size_t size() const;

  /// Sum of values flushed out by trim (aggregation before discard).
  std::uint64_t flushed_total() const { return flushed_total_; }

 private:
  struct Entry {
    rt::tracked<std::uint64_t> value;
    rt::tracked<std::uint32_t> kind;
  };

  std::string name_;
  ObjectPool& pool_;
  mutable rt::mutex mu_;
  std::deque<Entry*> entries_;
  std::uint64_t flushed_total_ = 0;
};

}  // namespace rg::sip
