// sip_proxy_demo — the paper's debugging process on the SIP proxy.
//
// Runs one SIPp test case against the proxy (with the full §4.1/§4.2 fault
// catalogue seeded) under the three detector configurations and prints a
// Fig. 6 row plus the full Helgrind-style log of the final configuration —
// the artefacts a developer of the paper's proxy would look at.
//
// Usage: sip_proxy_demo [testcase 1..8] [seed]
#include <cstdio>
#include <cstdlib>

#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rg;
  int testcase = 2;
  std::uint64_t seed = 7;
  if (argc > 1) testcase = std::atoi(argv[1]);
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 10);
  if (testcase < 1 || testcase > sipp::kTestCaseCount) {
    std::fprintf(stderr, "testcase must be 1..%d\n", sipp::kTestCaseCount);
    return 2;
  }

  const sipp::Scenario scenario = sipp::build_testcase(testcase, seed);
  std::printf("Test case %s — %s (%zu messages, seed %llu)\n\n",
              scenario.name.c_str(), sipp::testcase_description(testcase),
              scenario.total_messages(),
              static_cast<unsigned long long>(seed));

  sipp::ExperimentConfig cfg;
  cfg.seed = seed;

  struct Run {
    const char* name;
    core::HelgrindConfig detector;
  };
  const Run runs[] = {
      {"Original Helgrind", core::HelgrindConfig::original()},
      {"HWLC  (bus-lock corrected)", core::HelgrindConfig::hwlc()},
      {"HWLC+DR (+ destructor annotations)", core::HelgrindConfig::hwlc_dr()},
  };

  support::Table table("debugging runs");
  table.header({"Configuration", "locations", "total warnings", "responses"});
  std::string final_log;
  for (const Run& run : runs) {
    cfg.detector = run.detector;
    const sipp::ExperimentResult result = sipp::run_scenario(scenario, cfg);
    table.row(run.name, result.reported_locations, result.total_warnings,
              result.responses);
    final_log = result.report_text;
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Remaining warnings under HWLC+DR (\"most of them are real "
              "synchronization failures\"):\n\n%s",
              final_log.c_str());
  return 0;
}
