// threadpool_ownership — the Figs. 10/11 patterns side by side.
//
// The proxy's thread-per-request pattern passes message ownership through
// thread create/join, which the thread-segment algorithm understands; the
// planned thread-pool pattern passes it through queue put/get, which the
// baseline algorithm does not — the false-positive class the paper lists
// under "transition of ownership" and addresses as future work.
#include <cstdio>

#include "core/helgrind.hpp"
#include "rt/memory.hpp"
#include "rt/queue.hpp"
#include "rt/sim.hpp"
#include "rt/thread.hpp"

namespace {

constexpr int kJobs = 8;

struct Job {
  rg::rt::tracked<int> payload;
  rg::rt::tracked<int> result;
};

/// Fig. 10: spawn a worker per job after initialising it; join before
/// reading the result.
void thread_per_request() {
  using namespace rg;
  for (int i = 0; i < kJobs; ++i) {
    Job job;
    rt::mem_alloc(&job, sizeof(Job), std::source_location::current());
    job.payload.store(i);  // setup data
    rt::thread worker([&job] { job.result.store(job.payload.load() * 2); },
                      "worker");
    worker.join();  // wait
    (void)job.result.load();
    rt::mem_free(&job, std::source_location::current());
  }
}

/// Fig. 11: a fixed pool created BEFORE the jobs exist; hand-off through a
/// message queue.
void thread_pool() {
  using namespace rg;
  rt::message_queue<Job*> requests("requests");
  rt::message_queue<Job*> done("done");
  std::vector<rt::thread> workers;
  for (int i = 0; i < 3; ++i)
    workers.emplace_back(
        [&] {
          Job* job = nullptr;
          while (requests.get(job)) {
            job->result.store(job->payload.load() * 2);  // process data
            done.put(job);
          }
        },
        "pool-worker");

  for (int i = 0; i < kJobs; ++i) {
    auto* job = new Job;
    rt::mem_alloc(job, sizeof(Job), std::source_location::current());
    job->payload.store(i);  // setup data — AFTER the workers started
    requests.put(job);      // post
  }
  for (int i = 0; i < kJobs; ++i) {
    Job* job = nullptr;
    done.get(job);  // wait
    (void)job->result.load();
    rt::mem_free(job, std::source_location::current());
    delete job;
  }
  requests.close();
  for (auto& w : workers) w.join();
}

std::size_t run(void (*scenario)(), const rg::core::HelgrindConfig& cfg) {
  rg::core::HelgrindTool detector(cfg);
  rg::rt::SimConfig sim_cfg;
  sim_cfg.sched.seed = 5;
  rg::rt::Sim sim(sim_cfg);
  sim.attach(detector);
  sim.run(scenario);
  return detector.reports().distinct_locations();
}

}  // namespace

int main() {
  using namespace rg;
  std::printf("Transition of ownership (Figs. 10/11), %d jobs each:\n\n",
              kJobs);
  std::printf("  pattern              detector          warnings\n");
  std::printf("  thread-per-request   HWLC+DR           %zu   <- create/join "
              "hand-off understood\n",
              run(thread_per_request, core::HelgrindConfig::hwlc_dr()));
  std::printf("  thread-pool          HWLC+DR           %zu   <- put/get "
              "hand-off invisible (Fig. 11 FP)\n",
              run(thread_pool, core::HelgrindConfig::hwlc_dr()));
  std::printf("  thread-pool          +hb_message_pass  %zu   <- the §5 "
              "future-work extension\n",
              run(thread_pool, core::HelgrindConfig::extended()));
  return 0;
}
