// annotate_pipeline — the three-stage debugging process of Fig. 3, in one
// program: instrument source text, show the Fig. 4 transformation, and
// demonstrate that the resulting annotation events silence the destructor
// false positive while keeping a real cross-thread race visible.
#include <cstdio>

#include "annotate/rewrite.hpp"
#include "annotate/runtime.hpp"
#include "core/helgrind.hpp"
#include "rt/memory.hpp"
#include "rt/sim.hpp"
#include "rt/sync.hpp"
#include "rt/thread.hpp"

namespace {

// A small polymorphic hierarchy like the proxy's message classes.
struct Connection : rg::rt::instrumented_object {
  rg::rt::tracked<int> bytes;
  virtual void poll() {
    virtual_dispatch();
    (void)bytes.load();
  }
  ~Connection() override { vptr_write(); }
};
struct TlsConnection final : Connection {
  void poll() override {
    virtual_dispatch();
    (void)bytes.load();
  }
  ~TlsConnection() override { vptr_write(); }
};

std::size_t run_server(bool annotated) {
  rg::core::HelgrindTool detector(rg::core::HelgrindConfig::hwlc_dr());
  rg::rt::Sim sim;
  sim.attach(detector);
  sim.run([annotated] {
    auto* conn = new TlsConnection;
    rg::rt::thread poller_a([conn] {
      for (int i = 0; i < 4; ++i) conn->poll();
    });
    rg::rt::thread poller_b([conn] {
      for (int i = 0; i < 4; ++i) static_cast<Connection*>(conn)->poll();
    });
    poller_a.join();
    poller_b.join();
    if (annotated)
      delete rg::annotate::ca_deletor_single(conn);  // the Fig. 4 shim
    else
      delete conn;
  });
  return detector.reports().distinct_locations();
}

}  // namespace

int main() {
  using namespace rg;

  // --- Stage 2 of Fig. 3: the source-to-source transformation --------------
  const char* original_source =
      "/* Original source code */\n"
      "void g(char* p)\n"
      "{\n"
      "  delete p;\n"
      "}\n";
  const annotate::RewriteResult rewritten =
      annotate::annotate_deletes(original_source);
  std::printf("Fig. 4 — the instrumentation stage rewrote %zu delete "
              "expression(s):\n\n--- input ---\n%s\n--- output ---\n%s\n",
              rewritten.total(), original_source, rewritten.text.c_str());

  // --- Stage 3: execution with detection -----------------------------------
  const std::size_t unannotated = run_server(false);
  const std::size_t annotated = run_server(true);
  std::printf("Destructor of a shared polymorphic object:\n");
  std::printf("  without annotation: %zu false positive(s) (§4.2.1)\n",
              unannotated);
  std::printf("  with annotation:    %zu\n\n", annotated);
  std::printf("\"That way, accesses by other threads during destruction are "
              "still detected\" — and the annotation \"could be inserted "
              "into production code\" since it is a no-op outside the VM:\n");
  {
    // No Sim active: the shim must cost nothing and change nothing.
    auto* conn = new TlsConnection;
    delete annotate::ca_deletor_single(conn);
    std::printf("  (ran the annotated delete natively: fine)\n");
  }
  return unannotated > 0 && annotated == 0 ? 0 : 1;
}
