// deadlock_demo — both kinds of deadlock checking (paper §3.3).
//
// 1. The DeadlockTool's lock-order graph flags a *potential* deadlock from
//    a run that never actually blocked (lock-order inversion).
// 2. The scheduler detects an *actual* deadlock when a schedule drives the
//    two threads into the circular wait, and reports who was blocked on
//    what — replacing the racy application-level timeout hack the paper's
//    proxy shipped with.
#include <cstdio>

#include "core/deadlock.hpp"
#include "rt/sim.hpp"
#include "rt/sync.hpp"
#include "rt/thread.hpp"

namespace {

/// Transfers between two accounts, locking the two account mutexes in
/// argument order — the classic AB/BA bug.
void transfer(rg::rt::mutex& from, rg::rt::mutex& to, int* balance_from,
              int* balance_to, int amount) {
  rg::rt::lock_guard first(from);
  rg::rt::yield();  // widen the window
  rg::rt::lock_guard second(to);
  *balance_from -= amount;
  *balance_to += amount;
}

}  // namespace

int main() {
  using namespace rg;

  // --- 1. potential deadlock found without blocking ------------------------
  {
    core::DeadlockTool order_checker;
    rt::Sim sim;
    sim.attach(order_checker);
    sim.run([] {
      rt::mutex account_a("account-a");
      rt::mutex account_b("account-b");
      int balance_a = 100, balance_b = 100;
      // One thread at a time: never blocks, but the order graph sees both
      // a->b and b->a.
      transfer(account_a, account_b, &balance_a, &balance_b, 10);
      transfer(account_b, account_a, &balance_b, &balance_a, 5);
    });
    std::printf("Lock-order checker: %zu potential deadlock(s) reported "
                "(without any thread ever blocking)\n\n",
                order_checker.reports().distinct_locations());
    std::printf("%s\n", order_checker.reports().render(sim.runtime()).c_str());
  }

  // --- 2. actual deadlock caught by the scheduler -----------------------------
  {
    int deadlocked_seeds = 0;
    const int seeds = 12;
    std::string evidence;
    for (int seed = 1; seed <= seeds; ++seed) {
      rt::SimConfig cfg;
      cfg.sched.seed = static_cast<std::uint64_t>(seed);
      rt::Sim sim(cfg);
      const rt::SimResult result = sim.run([] {
        rt::mutex account_a("account-a");
        rt::mutex account_b("account-b");
        int balance_a = 100, balance_b = 100;
        rt::thread t1([&] {
          transfer(account_a, account_b, &balance_a, &balance_b, 10);
        });
        rt::thread t2([&] {
          transfer(account_b, account_a, &balance_b, &balance_a, 5);
        });
        t1.join();
        t2.join();
      });
      if (result.deadlocked()) {
        ++deadlocked_seeds;
        evidence = result.deadlock.describe();
      }
    }
    std::printf("Actual deadlocks: %d of %d schedules drove the threads "
                "into the circular wait.\n",
                deadlocked_seeds, seeds);
    if (!evidence.empty()) std::printf("Example evidence:\n%s", evidence.c_str());
    std::printf(
        "\n(The lock-order checker flags the bug on EVERY schedule; actually "
        "hitting the deadlock is schedule-dependent — which is why the "
        "paper prefers checker-based detection over the application's "
        "timeout hack.)\n");
  }
  return 0;
}
