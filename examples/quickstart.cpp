// Quickstart — find a data race in 40 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The program under test runs inside the deterministic simulator (the
// stand-in for the Valgrind VM); the HelgrindTool consumes its event
// stream and prints a Helgrind-style report for the unsynchronised
// counter while staying silent about the lock-protected one.
#include <cstdio>

#include "core/helgrind.hpp"
#include "rt/memory.hpp"
#include "rt/sim.hpp"
#include "rt/sync.hpp"
#include "rt/thread.hpp"

int main() {
  using namespace rg;

  // 1. Pick a detector configuration. hwlc_dr() is the paper's final
  //    one: corrected bus-lock model + destructor annotations honoured.
  core::HelgrindTool detector(core::HelgrindConfig::hwlc_dr());

  // 2. Create a simulation and attach the detector.
  rt::Sim sim;
  sim.attach(detector);

  // 3. Run the program under test.
  sim.run([] {
    rt::mutex mu("counter-mutex");
    rt::tracked<int> protected_counter;
    rt::tracked<int> racy_counter;

    auto worker = [&] {
      for (int i = 0; i < 50; ++i) {
        {
          rt::lock_guard guard(mu);
          protected_counter.store(protected_counter.load() + 1);
        }
        // Oops: no lock here.
        racy_counter.store(racy_counter.load() + 1);
      }
    };
    rt::thread a(worker, "worker-a");
    rt::thread b(worker, "worker-b");
    a.join();
    b.join();

    std::printf("protected counter: %d (always 100)\n",
                protected_counter.load());
    std::printf("racy counter:      %d (may have lost updates)\n",
                racy_counter.load());
  });

  // 4. Read the report.
  std::printf("\n%zu distinct race location(s) reported:\n\n",
              detector.reports().distinct_locations());
  std::printf("%s", detector.reports().render(sim.runtime()).c_str());
  return detector.reports().distinct_locations() == 1 ? 0 : 1;
}
