// stringtest — the paper's Fig. 8 program, line for line.
//
//   /*! \file stringtest.cpp
//    *  \brief Test shared read-access of std::string-objects. */
//
// A reference-counted string is created by main, copied by a worker
// thread, and copied again by main. The copy at "line 22" triggers a
// bus-locked increment of the shared reference counter; under the original
// Helgrind bus-lock model this is reported as a possible data race (the
// Fig. 9 warning), under the paper's corrected model it is not.
//
// Run with an argument to choose the model: `stringtest original` or
// `stringtest hwlc` (default: both).
#include <cstdio>
#include <cstring>

#include "core/helgrind.hpp"
#include "rt/sim.hpp"
#include "rt/thread.hpp"
#include "sip/cow_string.hpp"

namespace {

void stringtest(rg::sip::cow_string* text) {
  // void* workerThread(void* arguments)
  auto worker_thread = [text] {
    rg::sip::cow_string local = *text;  // std::string text = *(std::string*)arguments;
    (void)local.size();
  };

  rg::rt::thread thread_id(worker_thread, "workerThread");  // pthread_create
  rg::rt::sleep_ticks(1000);                                // sleep(1);
  rg::sip::cow_string text_copy = *text;  // <- reported conflict (line 22)
  thread_id.join();                       // pthread_join
}

int run(rg::core::BusLockModel model, const char* label) {
  rg::core::HelgrindConfig cfg;
  cfg.bus_lock_model = model;
  rg::core::HelgrindTool detector(cfg);
  rg::rt::Sim sim;
  sim.attach(detector);
  sim.run([] {
    rg::sip::cow_string text("contents");  // std::string text("contents");
    stringtest(&text);
  });
  std::printf("=== bus lock modelled as %s: %zu warning(s)\n", label,
              detector.reports().distinct_locations());
  std::printf("%s\n", detector.reports().render(sim.runtime()).c_str());
  return static_cast<int>(detector.reports().distinct_locations());
}

}  // namespace

int main(int argc, char** argv) {
  const bool run_original =
      argc < 2 || std::strcmp(argv[1], "original") == 0;
  const bool run_hwlc = argc < 2 || std::strcmp(argv[1], "hwlc") == 0;

  int original_warnings = -1, hwlc_warnings = -1;
  if (run_original)
    original_warnings =
        run(rg::core::BusLockModel::Mutex, "a plain mutex (original)");
  if (run_hwlc)
    hwlc_warnings =
        run(rg::core::BusLockModel::RwLock, "a read-write lock (HWLC)");

  if (run_original && run_hwlc) {
    std::printf("The spurious warning in the string class is %s by the "
                "corrected emulation.\n",
                original_warnings == 1 && hwlc_warnings == 0 ? "removed"
                                                             : "NOT removed");
  }
  return 0;
}
